package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StressOutcome summarizes a randomized exploration.
type StressOutcome struct {
	// Runs is the number of random executions performed.
	Runs int
	// Violations is the number of runs that violated a requirement.
	Violations int
	// First is the first violating execution found, or nil.
	First *Counterexample
	// MaxProcSteps is the largest per-process step count observed.
	MaxProcSteps int
	// TotalFaults is the sum of fault counts across runs.
	TotalFaults int
}

// OK reports that no violation was observed.
func (o *StressOutcome) OK() bool { return o.Violations == 0 }

// Rate returns the fraction of violating runs.
func (o *StressOutcome) Rate() float64 {
	if o.Runs == 0 {
		return 0
	}
	return float64(o.Violations) / float64(o.Runs)
}

// StressWith is the unified-options form of Stress: the execution space is
// described by run.With... options instead of a Config literal.
func StressWith(runs int, seed int64, opts ...run.Option) (*StressOutcome, error) {
	return Stress(ConfigFrom(run.NewSettings(opts...)), runs, seed)
}

// SampleWith is the unified-options form of Sample.
func SampleWith(seed int64, opts ...run.Option) (*Counterexample, error) {
	return Sample(ConfigFrom(run.NewSettings(opts...)), seed)
}

// Stress samples the execution tree uniformly at random (both scheduling and
// fault decisions) for the given number of runs. It is the scalable
// complement to Check for configurations whose trees are too large to
// enumerate; a deterministic seed makes the whole batch replayable.
func Stress(cfg Config, runs int, seed int64) (*StressOutcome, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("explore: no protocol")
	}
	if len(cfg.Inputs) == 0 {
		return nil, fmt.Errorf("explore: no inputs")
	}
	kind := cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}

	rng := rand.New(rand.NewSource(seed))
	out := &StressOutcome{}
	for i := 0; i < runs; i++ {
		ce, verdict, stats, err := stressOnce(cfg, kind, rng)
		if err != nil {
			return nil, err
		}
		out.Runs++
		out.TotalFaults += stats.faults
		if stats.maxSteps > out.MaxProcSteps {
			out.MaxProcSteps = stats.maxSteps
		}
		if !verdict.OK() {
			out.Violations++
			if out.First == nil {
				out.First = ce
			}
		}
	}
	return out, nil
}

// Sample runs one uniformly random execution (scheduling and fault
// decisions both random, derived from the seed) and returns its record —
// verdict, schedule, and trace. Use it to tally violation kinds over many
// seeds where Stress's aggregate view is not enough.
func Sample(cfg Config, seed int64) (*Counterexample, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("explore: no protocol")
	}
	if len(cfg.Inputs) == 0 {
		return nil, fmt.Errorf("explore: no inputs")
	}
	kind := cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}
	ce, _, _, err := stressOnce(cfg, kind, rand.New(rand.NewSource(seed)))
	return ce, err
}

func stressOnce(cfg Config, kind fault.Kind, rng *rand.Rand) (*Counterexample, run.Verdict, runStats, error) {
	budget := fault.NewFixedBudget(cfg.FaultyObjects, cfg.FaultsPerObject)
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		if !budget.Admits(op.Object) || !observable(kind, op) {
			return fault.NoFault
		}
		if rng.Intn(2) == 1 {
			return fault.Proposal{Kind: kind}
		}
		return fault.NoFault
	})

	bank := object.NewBank(cfg.Protocol.Objects(), budget, policy)
	var schedule []int
	sched := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		pick := enabled[rng.Intn(len(enabled))]
		schedule = append(schedule, pick)
		return pick, true
	})

	limit := cfg.StepLimit
	if limit <= 0 {
		limit = cfg.Protocol.StepBound(len(cfg.Inputs))
	}
	log := trace.New()
	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(cfg.Protocol, bank, cfg.Inputs),
		Scheduler: sched,
		StepLimit: limit,
		Log:       log,
	})
	if err != nil && res == nil {
		return nil, run.Verdict{}, runStats{}, err
	}

	stats := runStats{faults: budget.TotalFaults()}
	for _, s := range res.Steps {
		if s > stats.maxSteps {
			stats.maxSteps = s
		}
	}
	verdict := run.Evaluate(cfg.Inputs, res, err)
	ce := &Counterexample{
		Schedule: schedule,
		Verdict:  verdict,
		Trace:    log,
		Inputs:   cfg.Inputs,
	}
	return ce, verdict, stats, nil
}
