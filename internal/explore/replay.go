package explore

import "context"

// Replay re-executes the single execution identified by a choice path
// (as recorded in Counterexample.Path) under the same configuration and
// returns its counterexample record. Because the simulator is
// deterministic, the replay reproduces the original execution event for
// event — the standard way to inspect, shrink, or export a violation found
// during exploration.
func Replay(cfg Config, path []int) (*Counterexample, error) {
	kind, _, compiled, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	c := &chooser{path: append([]int(nil), path...)}
	es := newExecState(cfg, kind, compiled, c, nil)
	defer es.close()
	verdict, _, _, err := es.runLeaf(context.Background())
	if err != nil {
		return nil, err
	}
	return es.counterexample(verdict), nil
}
