package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func TestStressPCTFindsDeepViolation(t *testing.T) {
	// The covering-shaped violation of Theorem 19 at f=2, n=4 needs a
	// solo run, two targeted preemptions with faults, and another solo
	// run — uniform random walks essentially never produce it (E9
	// measures 0 in 4000), but PCT's solo bursts find it reliably.
	cfg := Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          inputs(4),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
	}
	out, err := StressPCT(cfg, 3000, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("PCT failed to find the Theorem 19 violation in 3000 runs")
	}
	if out.First == nil || out.First.Trace.Len() == 0 {
		t.Fatal("first counterexample must carry a trace")
	}
	if out.First.Verdict.Violation == "" {
		t.Fatal("counterexample verdict empty")
	}
}

func TestStressPCTCleanOnTolerantConfig(t *testing.T) {
	// Within the budget at n = f+1 PCT must find nothing (Theorem 6).
	cfg := Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
	}
	out, err := StressPCT(cfg, 500, 7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("PCT broke a provably tolerant configuration: %s", out.First)
	}
	if out.TotalFaults == 0 {
		t.Error("PCT stress never injected faults")
	}
}

func TestStressPCTSeedDeterminism(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	a, err := StressPCT(cfg, 100, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StressPCT(cfg, 100, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != b.Violations || a.TotalFaults != b.TotalFaults {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestStressPCTValidation(t *testing.T) {
	if _, err := StressPCT(Config{Inputs: inputs(1)}, 1, 0, 2, 0); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := StressPCT(Config{Protocol: core.SingleCAS{}}, 1, 0, 2, 0); err == nil {
		t.Error("missing inputs must error")
	}
}

func TestStressPCTSilentKind(t *testing.T) {
	out, err := StressPCT(Config{
		Protocol:        core.NewSilentRetry(2),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 2,
		Kind:            fault.Silent,
	}, 200, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("bounded silent faults broke the retry protocol under PCT: %s", out.First)
	}
}
