package explore

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/store"
)

// ManifestFor renders an exploration's verdict-relevant settings as a run
// manifest — the identity a checkpoint directory is bound to. Two
// explorations with equal manifests (by store.Manifest.Hash) enumerate the
// same execution tree, so resuming one from the other's checkpoint is sound;
// everything else (worker count, dedup, execution cap) is recorded as
// advisory metadata only.
func ManifestFor(cfg Config, exhaustive, dedupOn bool) (store.Manifest, error) {
	if cfg.Protocol == nil {
		return store.Manifest{}, fmt.Errorf("explore: no protocol")
	}
	kind := cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}
	compiled, err := run.ResolveExec(cfg.Exec, cfg.Protocol)
	if err != nil {
		return store.Manifest{}, err
	}
	reduce := ""
	if cfg.Reduce != run.ReduceOff {
		reduce = cfg.Reduce.String()
	}
	return store.Manifest{
		Engine:          "explore.Engine",
		Exec:            run.ExecLabel(compiled),
		Reduce:          reduce,
		Protocol:        cfg.Protocol.Name(),
		Objects:         cfg.Protocol.Objects(),
		Inputs:          cfg.Inputs,
		FaultyObjects:   cfg.FaultyObjects,
		FaultsPerObject: cfg.FaultsPerObject,
		Kind:            kind.String(),
		StepLimit:       cfg.StepLimit,
		Exhaustive:      exhaustive,
		MaxExecutions:   cfg.MaxExecutions,
		Dedup:           dedupOn,
	}, nil
}
