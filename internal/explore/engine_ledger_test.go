package explore

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/store"
)

// ledgerParticipants runs n engines over one shared run-directory ledger,
// each as if it were a separate OS process, and finalizes the merge.
func ledgerParticipants(t *testing.T, cfg Config, runDir string, n int, ttl time.Duration) (*Outcome, *ledger.Merged) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		owner := string(rune('a' + i))
		l, _, err := ledger.Join(runDir, "worker-"+owner, ttl)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, l *ledger.Ledger) {
			defer wg.Done()
			eng := &Engine{Workers: 2, Ledger: l}
			_, errs[i] = eng.Check(context.Background(), cfg)
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", i, err)
		}
	}
	out, m, err := FinalizeLedger(cfg, runDir, false)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return out, m
}

// TestEngineLedgerMatchesSingleProcessCovering: a covering sweep split
// across two ledger participants must merge to the exact single-process
// outcome — same execution count (dedup off), completeness, and maxima.
func TestEngineLedgerMatchesSingleProcessCovering(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
	}
	seq, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Complete || !seq.OK() {
		t.Fatalf("reference run: complete=%v violation=%v", seq.Complete, seq.Violation)
	}
	// The merge must be exact on every attempt. Whether BOTH participants
	// got to publish before the tree drained is a race against the tree
	// size, so retry a few times for the two-participant shape; the
	// equality assertions hold unconditionally each time.
	for attempt := 0; ; attempt++ {
		// A tight TTL keeps the export pump and claim polling fast enough
		// to hand work off within this small tree's ~50ms runtime. Tight
		// TTLs are safe: a stalled heartbeat only fences the claim, whose
		// discarded work is redone at the next epoch.
		out, m := ledgerParticipants(t, cfg, t.TempDir(), 2, 100*time.Millisecond)
		if out.Executions != seq.Executions {
			t.Errorf("merged executions = %d, want %d", out.Executions, seq.Executions)
		}
		if !out.Complete || !out.OK() {
			t.Errorf("merged: complete=%v violation=%v", out.Complete, out.Violation)
		}
		if out.MaxProcSteps != seq.MaxProcSteps || out.MaxFaults != seq.MaxFaults {
			t.Errorf("merged maxima = (%d,%d), want (%d,%d)",
				out.MaxProcSteps, out.MaxFaults, seq.MaxProcSteps, seq.MaxFaults)
		}
		if m.Results < 2 {
			t.Errorf("merged results = %d, want a multi-subtree merge", m.Results)
		}
		if t.Failed() || len(m.Participants) == 2 {
			break
		}
		if attempt == 4 {
			t.Fatalf("participants = %v after %d attempts, want 2", m.Participants, attempt+1)
		}
	}
}

// TestEngineLedgerCanonicalCounterexample: on a violating configuration the
// merged counterexample must be the lexicographically least violating path —
// the exact counterexample the sequential checker reports.
func TestEngineLedgerCanonicalCounterexample(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	seq, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.OK() {
		t.Fatal("reference run found no violation")
	}
	out, _ := ledgerParticipants(t, cfg, t.TempDir(), 2, 2*time.Second)
	if out.OK() {
		t.Fatal("merged run found no violation")
	}
	if !reflect.DeepEqual(out.Violation.Path, seq.Violation.Path) {
		t.Errorf("merged violation path = %v, want %v", out.Violation.Path, seq.Violation.Path)
	}
	if !reflect.DeepEqual(out.Violation.Schedule, seq.Violation.Schedule) {
		t.Errorf("merged schedule = %v, want %v", out.Violation.Schedule, seq.Violation.Schedule)
	}
	if out.Violation.Verdict.Violation != seq.Violation.Verdict.Violation {
		t.Errorf("merged verdict = %v, want %v",
			out.Violation.Verdict.Violation, seq.Violation.Verdict.Violation)
	}
}

// TestEngineLedgerSurvivesDeadClaimHolder: a participant that claims the
// root subtree and dies without renewing loses its lease to expiry; the
// surviving participant reclaims the subtree at a higher epoch and the
// merge still reproduces the single-process outcome exactly.
func TestEngineLedgerSurvivesDeadClaimHolder(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	}
	seq, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runDir := t.TempDir()
	const ttl = 300 * time.Millisecond
	dead, _, err := ledger.Join(runDir, "doomed", ttl)
	if err != nil {
		t.Fatal(err)
	}
	// Claim the root and walk away: no renewals, no result, simulating a
	// SIGKILLed process mid-lease.
	if _, err := dead.Claim(context.Background()); err != nil {
		t.Fatalf("doomed claim: %v", err)
	}

	live, _, err := ledger.Join(runDir, "survivor", ttl)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 2, Ledger: live}
	if _, err := eng.Check(context.Background(), cfg); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	out, m, err := FinalizeLedger(cfg, runDir, false)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if out.Executions != seq.Executions {
		t.Errorf("merged executions = %d, want %d", out.Executions, seq.Executions)
	}
	if !out.Complete || !out.OK() {
		t.Errorf("merged: complete=%v violation=%v", out.Complete, out.Violation)
	}
	if len(m.Participants) != 1 || m.Participants[0] != "survivor" {
		t.Errorf("participants = %v, want [survivor] only — the dead holder published nothing", m.Participants)
	}
	st, err := ledger.Status(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained || st.LeasesLive != 0 || st.LeasesExpired != 0 || st.TasksPending != 0 {
		t.Errorf("status after finalize: %+v, want drained with no leases or tasks", st)
	}
}

// TestEngineLedgerStoreMutuallyExclusive: the ledger is the durable state
// in distributed mode; configuring both must be refused loudly.
func TestEngineLedgerStoreMutuallyExclusive(t *testing.T) {
	l, _, err := ledger.Join(t.TempDir(), "w", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Ledger: l, Store: &store.Store{}}
	_, err = eng.Check(context.Background(), Config{
		Protocol: core.SingleCAS{},
		Inputs:   inputs(2),
	})
	if err == nil {
		t.Fatal("expected an error for Ledger+Store")
	}
}
