// Package adversary implements the paper's impossibility proofs as
// executable adversaries: programs that drive an arbitrary consensus
// protocol through the worst-case executions constructed in Sections 5.1
// and 5.2, plus the data-fault adversary of Afek et al. used to demonstrate
// that functional faults are strictly more expressive than data faults.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// CoveringResult reports the outcome of the Theorem 19 covering execution.
type CoveringResult struct {
	// Verdict is the consensus evaluation over the deciding processes.
	Verdict run.Verdict
	// Covered lists the objects overridden by p1..pf, in cover order.
	Covered []int
	// HaltedAfterSteps[i] is the number of steps coverer i+1 took before
	// being halted.
	HaltedAfterSteps []int
	// Trace is the full event log.
	Trace *trace.Log
	// Sim is the raw simulation result.
	Sim *sim.Result
}

// Violated reports whether the adversary produced a consensus violation.
func (r *CoveringResult) Violated() bool { return !r.Verdict.OK() }

// Covering executes the covering argument from the proof of Theorem 19
// against an arbitrary protocol using f CAS objects, with n = f+2 processes
// (inputs[0] ≠ inputs[i] for i ≥ 1, as the proof assumes):
//
//  1. p0 runs alone until it decides (wait-freedom + validity force it to
//     decide its own input).
//  2. For i = 1..f, p_i runs alone until its first CAS on an object not yet
//     written by p_1..p_{i-1}; that CAS manifests an overriding fault
//     (writing p_i's value over whatever p_0 left there), and p_i is halted
//     immediately. Claim 20 guarantees each p_i reaches such a CAS.
//  3. p_{f+1} runs alone until it decides. All of p0's writes have been
//     overridden, so the run is indistinguishable (to p_{f+1}) from one in
//     which p0 never ran — it must decide some v ∈ {v1..v_{f+1}}, while p0
//     decided v0: a consistency violation.
//
// Exactly one fault per covered object is used (t = 1), and at most f
// objects fault, so the execution stays inside the (f, 1) budget — the
// theorem's point is that budget-respecting faults already kill any
// f-object protocol once n ≥ f+2.
//
// Covering works against any Protocol; the paper proves a violation must
// exist for every protocol that would be (f, t, f+2)-tolerant, and for the
// paper's own constructions this adversary finds it directly.
func Covering(proto core.Protocol, inputs []int64) (*CoveringResult, error) {
	f := proto.Objects()
	if len(inputs) != f+2 {
		return nil, fmt.Errorf("adversary: covering needs n = f+2 = %d inputs, got %d", f+2, len(inputs))
	}
	return coveringRun(proto, inputs, false)
}

// CoveringTightness runs the same cover with only n = f+1 processes
// (p0 plus the f coverers) and then resumes the halted coverers to
// completion. Theorem 6 says the protocol must still reach agreement —
// demonstrating that the covering attack is powerless below the f+2
// process threshold, i.e. the bound is tight.
func CoveringTightness(proto core.Protocol, inputs []int64) (*CoveringResult, error) {
	f := proto.Objects()
	if len(inputs) != f+1 {
		return nil, fmt.Errorf("adversary: tightness needs n = f+1 = %d inputs, got %d", f+1, len(inputs))
	}
	return coveringRun(proto, inputs, true)
}

// coveringState is shared by the scheduler, fault policy, and observer of
// one covering execution. The simulator serializes all steps, so no locking
// is needed.
type coveringState struct {
	f int

	// phase: 0 = p0 solo; 1..f = coverer p_phase solo; f+1 = prober solo
	// (covering mode) or resume-all (tightness mode).
	phase int

	// writtenByCoverers[obj] reports that some coverer p_1..p_{i-1} wrote
	// to obj ("written" in the proof's sense: the register content was
	// replaced by that process).
	writtenByCoverers map[int]bool

	// halted[i] marks coverer i as halted by the adversary.
	halted []bool

	covered    []int
	haltSteps  []int
	stepsTaken []int

	resume bool
}

func (st *coveringState) currentCoverer() int { return st.phase }

// fresh reports whether the object has not yet been written by the coverers
// that precede the current one.
func (st *coveringState) fresh(obj int) bool { return !st.writtenByCoverers[obj] }

func coveringRun(proto core.Protocol, inputs []int64, tightness bool) (*CoveringResult, error) {
	f := proto.Objects()
	n := len(inputs)
	st := &coveringState{
		f:                 f,
		writtenByCoverers: make(map[int]bool),
		halted:            make([]bool, n),
		stepsTaken:        make([]int, n),
		resume:            tightness,
	}

	budget := fault.NewBudget(f, 1)
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		if st.phase >= 1 && st.phase <= st.f && op.Proc == st.currentCoverer() &&
			st.fresh(op.Object) && op.Current != op.Exp {
			return fault.Proposal{Kind: fault.Overriding}
		}
		return fault.NoFault
	})

	bank := object.NewBank(f, budget, policy)
	log := trace.New()

	observer := func(e trace.Event) {
		if e.Kind != trace.EventCAS {
			return
		}
		st.stepsTaken[e.Proc]++
		inCoverPhase := st.phase >= 1 && st.phase <= st.f
		if inCoverPhase && e.Proc == st.currentCoverer() && st.fresh(e.Object) {
			// First CAS by the current coverer on a fresh object:
			// the policy forced an override (or the CAS matched and
			// wrote naturally). Either way the object is covered
			// and the coverer is halted on the spot.
			st.writtenByCoverers[e.Object] = true
			st.covered = append(st.covered, e.Object)
			st.haltSteps = append(st.haltSteps, st.stepsTaken[e.Proc])
			st.halted[e.Proc] = true
			log.Append(trace.Event{Kind: trace.EventHalt, Proc: e.Proc})
			st.phase++
		}
	}

	scheduler := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		isEnabled := func(id int) bool {
			for _, e := range enabled {
				if e == id {
					return true
				}
			}
			return false
		}
		for {
			switch {
			case st.phase == 0:
				if isEnabled(0) {
					return 0, true
				}
				st.phase = 1
			case st.phase >= 1 && st.phase <= st.f:
				id := st.currentCoverer()
				if id < n && !st.halted[id] && isEnabled(id) {
					return id, true
				}
				st.phase++
			default:
				if st.resume {
					// Tightness mode: release every halted
					// coverer and run round-robin to the end.
					for _, id := range enabled {
						return id, true
					}
					return 0, false
				}
				prober := n - 1
				if isEnabled(prober) && !st.halted[prober] {
					return prober, true
				}
				return 0, false
			}
		}
	})

	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(proto, bank, inputs),
		Scheduler: scheduler,
		StepLimit: proto.StepBound(n) + 8,
		Log:       log,
		Observer:  observer,
	})
	if err != nil && res == nil {
		return nil, err
	}
	verdict := run.Evaluate(inputs, res, err)
	return &CoveringResult{
		Verdict:          verdict,
		Covered:          st.covered,
		HaltedAfterSteps: st.haltSteps,
		Trace:            log,
		Sim:              res,
	}, nil
}

// ReducedModelPolicy returns the fault policy of the reduced model used in
// the proof of Theorem 18: every CAS executed by the designated process is
// faulty (overriding), and no other process ever causes a fault. Combined
// with an unbounded budget and the schedule explorer this realizes the
// proof's non-determinism-free adversary.
func ReducedModelPolicy(faultyProc int) fault.Policy {
	return fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		if op.Proc == faultyProc && op.Current != op.Exp {
			return fault.Proposal{Kind: fault.Overriding}
		}
		return fault.NoFault
	})
}

// DataFaultResult reports the outcome of the data-fault comparison run.
type DataFaultResult struct {
	Verdict run.Verdict
	Trace   *trace.Log
}

// Violated reports whether the data fault produced a consensus violation.
func (r *DataFaultResult) Violated() bool { return !r.Verdict.OK() }

// DataFault executes the Afek-style data-fault adversary used in experiment
// E7 to separate the two fault models: process 0 runs solo to completion;
// then ONE data fault replaces the content of the given object with the
// given value (a data fault strikes at an arbitrary time, independently of
// any operation — exactly what a functional fault cannot do); then the
// remaining processes run round-robin to completion.
//
// Against the paper's constructions a single well-aimed data fault breaks
// consistency in configurations where the model checker proves that any
// number of budget-respecting overriding faults cannot — the expressiveness
// gap of Section 4.
func DataFault(proto core.Protocol, inputs []int64, obj int, value word.Word) (*DataFaultResult, error) {
	if obj < 0 || obj >= proto.Objects() {
		return nil, fmt.Errorf("adversary: object %d out of range", obj)
	}
	bank := object.NewBank(proto.Objects(), nil, nil)
	log := trace.New()

	corrupted := false
	scheduler := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		for _, id := range enabled {
			if id == 0 {
				return 0, true
			}
		}
		if !corrupted {
			corrupted = true
			pre := bank.Object(obj).Corrupt(value)
			log.Append(trace.Event{Kind: trace.EventCorrupt, Object: obj, Value: value, Pre: pre})
		}
		return enabled[0], true
	})

	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(proto, bank, inputs),
		Scheduler: scheduler,
		StepLimit: proto.StepBound(len(inputs)) + 8,
		Log:       log,
	})
	if err != nil && res == nil {
		return nil, err
	}
	return &DataFaultResult{
		Verdict: run.Evaluate(inputs, res, err),
		Trace:   log,
	}, nil
}
