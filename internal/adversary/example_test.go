package adversary_test

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
)

// The Theorem 19 covering execution, run against Figure 3 with one process
// too many: p0 decides solo, the coverer buries its trace with one
// overriding fault, and the prober decides something else.
func ExampleCovering() {
	proto := core.NewStaged(1, 1)                              // (f=1, t=1, n=2)-tolerant
	res, err := adversary.Covering(proto, []int64{10, 11, 12}) // n = f+2
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Violated(), res.Verdict.Violation)
	fmt.Println("covered objects:", res.Covered)
	// Output:
	// true consistency
	// covered objects: [0]

}
