package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/word"
)

func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

func TestCoveringBreaksStagedAtFPlus2(t *testing.T) {
	// Theorem 19: for every f, the covering adversary defeats the
	// f-object staged protocol once n = f+2.
	for _, f := range []int{1, 2, 3, 4} {
		proto := core.NewStaged(f, 1)
		res, err := Covering(proto, inputs(f+2))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Violated() {
			t.Errorf("f=%d: covering adversary failed to break the protocol", f)
			continue
		}
		if res.Verdict.Violation != run.ViolationConsistency {
			t.Errorf("f=%d: violation = %s, want consistency", f, res.Verdict.Violation)
		}
		if len(res.Covered) != f {
			t.Errorf("f=%d: covered %d objects, want %d", f, len(res.Covered), f)
		}
		// The proof requires the covered objects to be distinct.
		seen := map[int]bool{}
		for _, o := range res.Covered {
			if seen[o] {
				t.Errorf("f=%d: object %d covered twice", f, o)
			}
			seen[o] = true
		}
	}
}

func TestCoveringUsesAtMostOneFaultPerObject(t *testing.T) {
	proto := core.NewStaged(2, 1)
	res, err := Covering(proto, inputs(4))
	if err != nil {
		t.Fatal(err)
	}
	perObject := map[int]int{}
	for _, e := range res.Trace.Faults() {
		perObject[e.Object]++
	}
	for obj, n := range perObject {
		if n > 1 {
			t.Errorf("object %d faulted %d times; covering must stay within t=1", obj, n)
		}
	}
	if len(perObject) > 2 {
		t.Errorf("%d faulty objects; covering must stay within f=2", len(perObject))
	}
}

func TestCoveringProberDisagreesWithP0(t *testing.T) {
	proto := core.NewStaged(1, 1)
	res, err := Covering(proto, inputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sim.Decided[0] {
		t.Fatal("p0 must decide during its solo run")
	}
	prober := 2
	if !res.Sim.Decided[prober] {
		t.Fatal("the prober must decide during its solo run")
	}
	if res.Sim.Decisions[0] == res.Sim.Decisions[prober] {
		t.Error("prober agreed with p0; the cover failed")
	}
	// p0 decided its own input (solo run + validity).
	if res.Sim.Decisions[0].Value() != 10 {
		t.Errorf("p0 decided %s, want its input 10", res.Sim.Decisions[0])
	}
}

func TestCoveringBreaksFPlusOneGivenOnlyFObjects(t *testing.T) {
	// Theorem 19 applies to any protocol on f objects: Figure 2
	// mis-provisioned with f objects total (i.e. treating all of its
	// objects as potentially faulty with f = objects) breaks at n ≥ f+2.
	// FPlusOne(0) uses a single object; run it with 3 processes.
	res, err := Covering(core.NewFPlusOne(0), inputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated() {
		t.Error("single-object Figure 2 must fall to the covering adversary at n=3")
	}
}

func TestCoveringTightnessAtFPlus1(t *testing.T) {
	// With only f+1 processes the same cover cannot break Theorem 6's
	// protocol: after the coverers resume, everyone agrees.
	for _, f := range []int{1, 2, 3} {
		proto := core.NewStaged(f, 1)
		res, err := CoveringTightness(proto, inputs(f+1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated() {
			t.Errorf("f=%d: tightness run violated consensus: %s\n%s",
				f, res.Verdict, res.Trace)
		}
		for i, ok := range res.Sim.Decided {
			if !ok {
				t.Errorf("f=%d: process %d never decided in tightness mode", f, i)
			}
		}
	}
}

func TestCoveringInputCountValidation(t *testing.T) {
	if _, err := Covering(core.NewStaged(2, 1), inputs(3)); err == nil {
		t.Error("covering must insist on n = f+2 inputs")
	}
	if _, err := CoveringTightness(core.NewStaged(2, 1), inputs(4)); err == nil {
		t.Error("tightness must insist on n = f+1 inputs")
	}
}

func TestReducedModelDefeatsSingleCASThreeProcs(t *testing.T) {
	// Theorem 18's reduced model: p0's CAS executions are always faulty.
	// Exploring schedules only (faults deterministic) must find a
	// violation for the single-object protocol with three processes.
	out, err := explore.Check(explore.Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
		FixedPolicy:     ReducedModelPolicy(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("reduced model must defeat the single-CAS protocol at n=3")
	}
}

func TestReducedModelHarmlessAtTwoProcs(t *testing.T) {
	// Theorem 4 again, now under the reduced model: schedules explored
	// exhaustively, p0 always faulty — two processes still agree.
	out, err := explore.Check(explore.Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
		FixedPolicy:     ReducedModelPolicy(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("reduced model broke the two-process case: complete=%v ok=%v", out.Complete, out.OK())
	}
}

func TestDataFaultBreaksStagedWhereFunctionalCannot(t *testing.T) {
	// The expressiveness gap (experiment E7): Staged(f=1, t=1) with two
	// processes provably survives every overriding fault pattern (see
	// TestExhaustiveTheorem6SmallestInstance), but ONE data fault —
	// rewriting the object with the second process's value at final
	// stage — breaks consistency.
	proto := core.NewStaged(1, 1)
	in := inputs(2)
	forged := word.Pack(in[1], proto.MaxStage())
	res, err := DataFault(proto, in, 0, forged)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated() {
		t.Fatalf("data fault failed to break the protocol\n%s", res.Trace)
	}
	if res.Verdict.Violation != run.ViolationConsistency {
		t.Errorf("violation = %s, want consistency", res.Verdict.Violation)
	}
}

func TestDataFaultTraceRecordsCorruption(t *testing.T) {
	proto := core.NewStaged(1, 1)
	in := inputs(2)
	res, err := DataFault(proto, in, 0, word.Pack(in[1], proto.MaxStage()))
	if err != nil {
		t.Fatal(err)
	}
	var corrupts int
	for _, e := range res.Trace.Events() {
		if e.Kind == "corrupt" {
			corrupts++
		}
	}
	if corrupts != 1 {
		t.Errorf("trace has %d corrupt events, want 1", corrupts)
	}
}

func TestDataFaultValidation(t *testing.T) {
	if _, err := DataFault(core.SingleCAS{}, inputs(2), 5, word.Bottom); err == nil {
		t.Error("out-of-range object must error")
	}
}

func TestDataFaultHarmlessValueKeepsConsensus(t *testing.T) {
	// A data fault that rewrites the register with a stale-but-harmless
	// value (p0's own final word) does not break this particular run —
	// the adversary must aim. This guards against the verdict machinery
	// flagging every corruption as a violation.
	proto := core.NewStaged(1, 1)
	in := inputs(2)
	sameVal := word.Pack(in[0], proto.MaxStage())
	res, err := DataFault(proto, in, 0, sameVal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated() {
		t.Errorf("harmless corruption flagged: %s", res.Verdict)
	}
}
