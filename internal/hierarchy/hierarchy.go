// Package hierarchy estimates consensus numbers of faulty-CAS
// configurations, reproducing the closing observation of Section 5.2: a set
// of f CAS objects, each with a bounded number of overriding faults, has
// consensus number exactly f+1 — so overriding-faulty CAS objects populate
// every level of the Herlihy consensus hierarchy.
//
// The estimate for one configuration combines both directions of the paper:
//
//   - Possibility up to n = f+1: the staged protocol of Figure 3 is checked
//     at each process count — exhaustively when the execution tree is small
//     enough, by seeded randomized stress otherwise.
//   - Impossibility at n = f+2: the covering adversary of Theorem 19 is run
//     against the protocol; the theorem predicts (and this package asserts)
//     a consistency violation.
package hierarchy

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/run"
)

// Evidence says how a level of the estimate was established.
type Evidence string

const (
	// EvidenceExhaustive means the complete execution tree was checked.
	EvidenceExhaustive Evidence = "exhaustive"
	// EvidenceStress means a randomized sample found no violation.
	EvidenceStress Evidence = "stress"
	// EvidenceCovering means the covering adversary produced a violation.
	EvidenceCovering Evidence = "covering"
)

// Level is the verdict for one (f, t, n) point.
type Level struct {
	N          int
	OK         bool // consensus achieved at this process count
	Evidence   Evidence
	Executions int // executions examined at this level
}

// Estimate is the consensus-number estimate for f faulty CAS objects with a
// per-object fault bound t.
type Estimate struct {
	F int
	T int
	// ConsensusNumber is the largest n for which consensus was achieved
	// (the paper proves it equals F+1).
	ConsensusNumber int
	// Levels records the per-n evidence, n = 2 .. F+2.
	Levels []Level
}

// String renders the estimate in one line.
func (e *Estimate) String() string {
	return fmt.Sprintf("f=%d t=%d: consensus number %d", e.F, e.T, e.ConsensusNumber)
}

// Options tunes the estimation effort.
type Options struct {
	// ExhaustiveBudget is the execution cap under which the checker may
	// complete an exhaustive enumeration; larger trees fall back to
	// stress. 0 means 20000.
	ExhaustiveBudget int
	// StressRuns is the number of randomized executions per level when
	// falling back. 0 means 400.
	StressRuns int
	// Seed drives the randomized fallback.
	Seed int64
	// Workers is the parallelism of the per-level exhaustive exploration
	// (0 means GOMAXPROCS). Estimates are identical for any value: the
	// engine's outcomes are deterministic.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.ExhaustiveBudget <= 0 {
		o.ExhaustiveBudget = 20000
	}
	if o.StressRuns <= 0 {
		o.StressRuns = 400
	}
	return o
}

func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

// ForFaultyCAS estimates the consensus number of f all-faulty CAS objects
// with at most t overriding faults each, using the staged protocol as the
// implementation witness and the covering adversary as the impossibility
// witness.
func ForFaultyCAS(f, t int, opts Options) (*Estimate, error) {
	opts = opts.withDefaults()
	proto := core.NewStaged(f, t)
	allObjs := make([]int, f)
	for i := range allObjs {
		allObjs[i] = i
	}

	est := &Estimate{F: f, T: t, ConsensusNumber: 1}

	// Possibility side: n = 2 .. f+1.
	for n := 2; n <= f+1; n++ {
		level, err := checkLevel(proto, allObjs, t, n, opts)
		if err != nil {
			return nil, err
		}
		est.Levels = append(est.Levels, level)
		if !level.OK {
			return est, nil
		}
		est.ConsensusNumber = n
	}

	// Impossibility side: n = f+2 must fall to the covering adversary.
	cov, err := adversary.Covering(proto, inputs(f+2))
	if err != nil {
		return nil, err
	}
	level := Level{N: f + 2, OK: !cov.Violated(), Evidence: EvidenceCovering, Executions: 1}
	est.Levels = append(est.Levels, level)
	if level.OK {
		// The covering adversary did not break the protocol at f+2 —
		// contrary to Theorem 19. Report it as a (suspicious) higher
		// consensus number so callers notice.
		est.ConsensusNumber = f + 2
	}
	return est, nil
}

func checkLevel(proto core.Staged, faulty []int, t, n int, opts Options) (Level, error) {
	cfgOpts := []run.Option{
		run.WithProtocol(proto),
		run.WithInputs(inputs(n)...),
		run.WithFaultyObjects(faulty, t),
		run.WithMaxExecutions(opts.ExhaustiveBudget),
		run.WithWorkers(opts.Workers),
	}
	out, err := explore.CheckWith(context.Background(), cfgOpts...)
	if err != nil {
		return Level{}, err
	}
	if out.Violation != nil {
		return Level{N: n, OK: false, Evidence: EvidenceExhaustive, Executions: out.Executions}, nil
	}
	if out.Complete {
		return Level{N: n, OK: true, Evidence: EvidenceExhaustive, Executions: out.Executions}, nil
	}
	// Tree too large: fall back to randomized stress — a uniform pass
	// plus a PCT pass (solo bursts with targeted preemptions, the shape
	// of the paper's adversarial executions).
	st, err := explore.StressWith(opts.StressRuns, opts.Seed+int64(n), cfgOpts...)
	if err != nil {
		return Level{}, err
	}
	pct, err := explore.StressPCTWith(opts.StressRuns, opts.Seed+int64(n), 3, 0, cfgOpts...)
	if err != nil {
		return Level{}, err
	}
	return Level{
		N:          n,
		OK:         st.OK() && pct.OK(),
		Evidence:   EvidenceStress,
		Executions: out.Executions + st.Runs + pct.Runs,
	}, nil
}

// Table computes estimates for f = 1..maxF at the given t.
func Table(maxF, t int, opts Options) ([]*Estimate, error) {
	var out []*Estimate
	for f := 1; f <= maxF; f++ {
		est, err := ForFaultyCAS(f, t, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}
