package hierarchy

import "testing"

func TestConsensusNumberF1(t *testing.T) {
	est, err := ForFaultyCAS(1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ConsensusNumber != 2 {
		t.Fatalf("f=1: consensus number %d, want 2\nlevels: %+v", est.ConsensusNumber, est.Levels)
	}
	// Level n=2 should be proven exhaustively at f=1, t=1.
	if est.Levels[0].Evidence != EvidenceExhaustive {
		t.Errorf("n=2 evidence = %s, want exhaustive", est.Levels[0].Evidence)
	}
	// Level n=3 must fall to the covering adversary.
	last := est.Levels[len(est.Levels)-1]
	if last.N != 3 || last.OK {
		t.Errorf("n=3 level = %+v, want covering violation", last)
	}
}

func TestConsensusNumberF2(t *testing.T) {
	est, err := ForFaultyCAS(2, 1, Options{StressRuns: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.ConsensusNumber != 3 {
		t.Fatalf("f=2: consensus number %d, want 3\nlevels: %+v", est.ConsensusNumber, est.Levels)
	}
}

func TestTableSweepsLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("hierarchy sweep")
	}
	ests, err := Table(3, 1, Options{StressRuns: 100, ExhaustiveBudget: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("table has %d rows", len(ests))
	}
	for i, est := range ests {
		f := i + 1
		if est.ConsensusNumber != f+1 {
			t.Errorf("f=%d: consensus number %d, want %d (Section 5.2)", f, est.ConsensusNumber, f+1)
		}
		if est.String() == "" {
			t.Error("empty estimate string")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ExhaustiveBudget <= 0 || o.StressRuns <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}
