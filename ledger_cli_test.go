// Distributed-exploration CLI tests: several modelcheck processes cooperate
// through one -ledger run directory, one of them is SIGKILLed while holding
// a lease, and the merged verdict must match the single-process reference
// exactly — same execution count, same violation, same lex-least schedule.
package repro_test

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// startWorker launches a modelcheck ledger participant in the background.
func startWorker(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), "modelcheck"), args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitWorker reaps a background participant; ledger workers exit 0 when their
// published claims hold no counterexample and 1 when they do — both are
// successful terminations.
func waitWorker(t *testing.T, name string, cmd *exec.Cmd) {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		return
	}
	if ee, ok := err.(*exec.ExitError); ok && (ee.ExitCode() == 0 || ee.ExitCode() == 1) {
		return
	}
	t.Fatalf("worker %s: %v", name, err)
}

// TestCLILedgerKilledWorkerVerifiedMatchesSingle: a three-process ledger run
// in which the first worker — the one that created the ledger and claimed the
// root subtree — is SIGKILLed mid-lease. The survivors must reclaim its
// forfeited subtree after TTL expiry and drive the sweep to the exact
// single-process verdict: VERIFIED with an identical execution count.
func TestCLILedgerKilledWorkerVerifiedMatchesSingle(t *testing.T) {
	args := []string{"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded"}
	ref, code := runCLI(t, "modelcheck", args...)
	if code != 0 || !strings.Contains(ref, "VERIFIED") {
		t.Fatalf("reference run: exit %d:\n%s", code, ref)
	}
	refExecs := cliExecutions(t, ref)

	dir := filepath.Join(t.TempDir(), "run")
	// The victim creates the ledger on the slow interpreted engine (the
	// manifest seals that choice for every joiner), so the kill lands while
	// its lease is live and most of the tree is still unexplored.
	victim := startWorker(t, append(append([]string{}, args...),
		"-engine", "interpreted", "-ledger", dir, "-worker-id", "victim",
		"-lease-ttl", "400ms")...)
	time.Sleep(150 * time.Millisecond)
	if victim.Process.Kill() != nil {
		t.Log("victim finished before the kill; survivors merge a drained ledger instead")
	}
	victim.Wait() //nolint:errcheck // killed on purpose

	a := startWorker(t, "-ledger", dir, "-worker-id", "survivor-a")
	b := startWorker(t, "-ledger", dir, "-worker-id", "survivor-b")
	waitWorker(t, "survivor-a", a)
	waitWorker(t, "survivor-b", b)

	out, code := runCLI(t, "modelcheck", "-ledger-finalize", dir)
	if code != 0 {
		t.Fatalf("finalize: exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VERIFIED") || !strings.Contains(out, "(complete: true)") {
		t.Errorf("merged verdict must be a complete VERIFIED:\n%s", out)
	}
	if got := cliExecutions(t, out); got != refExecs {
		t.Errorf("merged executions = %d, single-process reference = %d", got, refExecs)
	}
}

// TestCLILedgerViolationCanonicalCounterexample: a two-process ledger run
// over a violating tree must finalize to the identical counterexample — same
// violation, same lex-least schedule — as the uninterrupted single-process
// search, whichever process happened to find it.
func TestCLILedgerViolationCanonicalCounterexample(t *testing.T) {
	args := []string{"-proto", "figure3", "-f", "1", "-t", "1", "-n", "3"}
	ref, code := runCLI(t, "modelcheck", args...)
	if code != 1 {
		t.Fatalf("reference search: exit %d, want 1:\n%s", code, ref)
	}
	wantSchedule := regexp.MustCompile(`schedule: \[[0-9 ]+\]`).FindString(ref)
	if wantSchedule == "" {
		t.Fatalf("reference output has no schedule line:\n%s", ref)
	}

	dir := filepath.Join(t.TempDir(), "run")
	// Both workers carry the full flags: two racing creators resolve to one
	// manifest either way, but a flagless joiner could race the creator and
	// lose with its defaults (flagless joining is covered by the
	// killed-worker test, where the manifest exists before the survivors).
	a := startWorker(t, append(append([]string{}, args...),
		"-ledger", dir, "-worker-id", "a")...)
	b := startWorker(t, append(append([]string{}, args...),
		"-ledger", dir, "-worker-id", "b")...)
	waitWorker(t, "a", a)
	waitWorker(t, "b", b)

	out, code := runCLI(t, "modelcheck", "-ledger-finalize", dir)
	if code != 1 {
		t.Fatalf("finalize: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION (consistency)") {
		t.Errorf("merged verdict missing the violation:\n%s", out)
	}
	if !strings.Contains(out, wantSchedule) {
		t.Errorf("merged counterexample differs from the single-process one:\nwant %s\ngot:\n%s",
			wantSchedule, out)
	}
}

// TestCLILedgerFinalizeIncomplete: finalizing while a subtree is still
// pending (here: the only worker capped out and abandoned its claim) must
// refuse with the incompleteness report and exit 2.
func TestCLILedgerFinalizeIncomplete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2",
		"-ledger", dir, "-worker-id", "capped", "-max", "2")
	if code != 0 {
		t.Fatalf("capped worker: exit %d:\n%s", code, out)
	}
	out, code = runCLI(t, "modelcheck", "-ledger-finalize", dir)
	if code != 2 || !strings.Contains(out, "incomplete") {
		t.Errorf("incomplete finalize: exit %d, want 2 with an incompleteness report:\n%s", code, out)
	}
}

// TestCLILedgerRefusesContradictionsAndCombos: a ledger run directory joins
// only with the settings it was created with, and the ledger flags are
// mutually exclusive with checkpoint/resume/finalize.
func TestCLILedgerRefusesContradictionsAndCombos(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2",
		"-ledger", dir, "-worker-id", "creator")
	if code != 0 {
		t.Fatalf("creator: exit %d:\n%s", code, out)
	}
	if out, code = runCLI(t, "modelcheck", "-ledger", dir, "-proto", "figure1"); code != 2 ||
		!strings.Contains(out, "contradicts") {
		t.Errorf("contradicting join: exit %d, want 2 with a contradiction message:\n%s", code, out)
	}
	if out, code = runCLI(t, "modelcheck", "-ledger", dir, "-checkpoint", dir); code != 2 {
		t.Errorf("-ledger with -checkpoint: exit %d, want 2:\n%s", code, out)
	}
	if out, code = runCLI(t, "modelcheck", "-ledger-finalize", dir, "-ledger", dir); code != 2 {
		t.Errorf("-ledger-finalize with -ledger: exit %d, want 2:\n%s", code, out)
	}
	if out, code = runCLI(t, "modelcheck", "-ledger-finalize", filepath.Join(t.TempDir(), "nope")); code != 2 {
		t.Errorf("finalize without a run: exit %d, want 2:\n%s", code, out)
	}
}
