// CLI integration tests: every executable under cmd/ is built once and
// driven through representative invocations, verifying flags, output shape,
// and exit codes end to end.
package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCLIs compiles all commands into a shared temp dir, once per test run.
func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration tests build binaries")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "repro-cli")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"faultsim", "modelcheck", "hierarchy", "experiments", "valency"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				binDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v\n%s", buildErr, binDir)
	}
	return binDir
}

// runCLI executes a built tool and returns stdout+stderr and the exit code.
func runCLI(t *testing.T, tool string, args ...string) (string, int) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", tool, err)
	}
	return string(out), code
}

func TestCLIFaultsimTolerantRun(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure2", "-f", "1", "-n", "3",
		"-fault", "overriding", "-rate", "1", "-unbounded")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "verdict  : OK") {
		t.Errorf("missing OK verdict:\n%s", out)
	}
	if !strings.Contains(out, "FAULT[overriding]") {
		t.Errorf("trace shows no faults:\n%s", out)
	}
}

func TestCLIFaultsimViolationExitCode(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure1", "-n", "3", "-sched", "roundrobin",
		"-fault", "overriding", "-rate", "1", "-unbounded", "-quiet")
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION") {
		t.Errorf("missing violation verdict:\n%s", out)
	}
}

func TestCLIFaultsimDiagram(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure1", "-n", "2", "-diagram")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "DECIDE") || !strings.Contains(out, "p0") {
		t.Errorf("diagram missing:\n%s", out)
	}
}

func TestCLIFaultsimBadFlags(t *testing.T) {
	if _, code := runCLI(t, "faultsim", "-proto", "nope"); code != 2 {
		t.Errorf("bad protocol: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "faultsim", "-sched", "nope"); code != 2 {
		t.Errorf("bad scheduler: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "faultsim", "-fault", "nope"); code != 2 {
		t.Errorf("bad fault kind: exit %d, want 2", code)
	}
}

func TestCLIModelcheckVerified(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VERIFIED") {
		t.Errorf("missing VERIFIED:\n%s", out)
	}
	if !strings.Contains(out, "4356") {
		t.Errorf("unexpected execution count:\n%s", out)
	}
}

func TestCLIModelcheckViolation(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "3", "-diagram")
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION (consistency)") {
		t.Errorf("missing violation:\n%s", out)
	}
	if !strings.Contains(out, "DECIDE") {
		t.Errorf("diagram missing:\n%s", out)
	}
}

func TestCLIModelcheckJSON(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure1", "-n", "3", "-unbounded", "-json")
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, `"kind": "cas"`) {
		t.Errorf("JSON trace missing:\n%s", out)
	}
}

func TestCLIHierarchy(t *testing.T) {
	out, code := runCLI(t, "hierarchy", "-maxf", "2", "-stress", "100", "-budget", "6000")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "all levels match the paper") {
		t.Errorf("hierarchy mismatch:\n%s", out)
	}
}

func TestCLIExperimentsList(t *testing.T) {
	out, code := runCLI(t, "experiments", "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestCLIExperimentsSingleQuick(t *testing.T) {
	out, code := runCLI(t, "experiments", "-run", "E5", "-quick")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "reproduced:") {
		t.Errorf("missing reproduction line:\n%s", out)
	}
}

func TestCLIExperimentsUnknownID(t *testing.T) {
	if _, code := runCLI(t, "experiments", "-run", "E99"); code != 2 {
		t.Errorf("unknown id: exit %d, want 2", code)
	}
}

func TestCLIValency(t *testing.T) {
	out, code := runCLI(t, "valency", "-proto", "figure1", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "multivalent") || !strings.Contains(out, "critical") {
		t.Errorf("valency output incomplete:\n%s", out)
	}
}

func TestCLIValencyPrefix(t *testing.T) {
	out, code := runCLI(t, "valency", "-proto", "figure1", "-n", "2", "-prefix", "0")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "10-valent") {
		t.Errorf("prefix state must be 10-valent:\n%s", out)
	}
}

// Every runnable example must build and complete successfully; each prints
// a success marker on its happy path.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example integration runs")
	}
	cases := map[string]string{
		"quickstart":    "agreement reached",
		"replicatedlog": "state machines identical",
		"energysim":     "across the whole voltage curve",
		"impossibility": "critical state found",
		"kvstore":       "replay determinism verified",
		"faultsweep":    "BROKEN",
	}
	for name, marker := range cases {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}
