// CLI integration tests: every executable under cmd/ is built once and
// driven through representative invocations, verifying flags, output shape,
// and exit codes end to end.
package repro_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace/export"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCLIs compiles all commands into a shared temp dir, once per test run.
func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration tests build binaries")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "repro-cli")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"faultsim", "modelcheck", "hierarchy", "experiments", "valency"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				binDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v\n%s", buildErr, binDir)
	}
	return binDir
}

// runCLI executes a built tool and returns stdout+stderr and the exit code.
func runCLI(t *testing.T, tool string, args ...string) (string, int) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", tool, err)
	}
	return string(out), code
}

func TestCLIFaultsimTolerantRun(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure2", "-f", "1", "-n", "3",
		"-fault", "overriding", "-rate", "1", "-unbounded")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "verdict  : OK") {
		t.Errorf("missing OK verdict:\n%s", out)
	}
	if !strings.Contains(out, "FAULT[overriding]") {
		t.Errorf("trace shows no faults:\n%s", out)
	}
}

func TestCLIFaultsimViolationExitCode(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure1", "-n", "3", "-sched", "roundrobin",
		"-fault", "overriding", "-rate", "1", "-unbounded", "-quiet")
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION") {
		t.Errorf("missing violation verdict:\n%s", out)
	}
}

func TestCLIFaultsimDiagram(t *testing.T) {
	out, code := runCLI(t, "faultsim",
		"-proto", "figure1", "-n", "2", "-diagram")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "DECIDE") || !strings.Contains(out, "p0") {
		t.Errorf("diagram missing:\n%s", out)
	}
}

func TestCLIFaultsimBadFlags(t *testing.T) {
	if _, code := runCLI(t, "faultsim", "-proto", "nope"); code != 2 {
		t.Errorf("bad protocol: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "faultsim", "-sched", "nope"); code != 2 {
		t.Errorf("bad scheduler: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "faultsim", "-fault", "nope"); code != 2 {
		t.Errorf("bad fault kind: exit %d, want 2", code)
	}
}

func TestCLIModelcheckVerified(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VERIFIED") {
		t.Errorf("missing VERIFIED:\n%s", out)
	}
	if !strings.Contains(out, "4356") {
		t.Errorf("unexpected execution count:\n%s", out)
	}
}

func TestCLIModelcheckViolation(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "3", "-diagram")
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION (consistency)") {
		t.Errorf("missing violation:\n%s", out)
	}
	if !strings.Contains(out, "DECIDE") {
		t.Errorf("diagram missing:\n%s", out)
	}
}

func TestCLIModelcheckJSON(t *testing.T) {
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure1", "-n", "3", "-unbounded", "-json")
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, `"kind": "cas"`) {
		t.Errorf("JSON trace missing:\n%s", out)
	}
}

// cliExecutions extracts the "executions  : N" count from modelcheck output.
func cliExecutions(t *testing.T, out string) int {
	t.Helper()
	m := regexp.MustCompile(`executions  : (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no executions line in output:\n%s", out)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCLIModelcheckKilledResume: a modelcheck enumeration killed
// mid-exploration (SIGKILL — no graceful shutdown) must be continuable with
// -resume alone, reaching the same verdict as an uninterrupted run. The
// resume reconstructs the protocol flags from the run directory's manifest.
func TestCLIModelcheckKilledResume(t *testing.T) {
	ref, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded")
	if code != 0 || !strings.Contains(ref, "VERIFIED") {
		t.Fatalf("reference run: exit %d:\n%s", code, ref)
	}

	dir := filepath.Join(t.TempDir(), "run")
	bin := filepath.Join(buildCLIs(t), "modelcheck")
	cmd := exec.Command(bin,
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded",
		"-workers", "1", "-checkpoint", dir, "-checkpoint-every", "20ms")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	killed := cmd.Process.Kill() == nil
	cmd.Wait()
	if !killed {
		t.Log("run finished before the kill; resuming a done store instead")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("no checkpoint written before the kill: %v", err)
	}

	out, code := runCLI(t, "modelcheck", "-resume", dir)
	if code != 0 {
		t.Fatalf("resume: exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VERIFIED") {
		t.Errorf("resumed run must reach the reference verdict:\n%s", out)
	}
	if !strings.Contains(out, "(complete: true)") {
		t.Errorf("resumed run did not complete the enumeration:\n%s", out)
	}
}

// TestCLIModelcheckResumeCounterexample: interrupting a counterexample
// search (here deterministically, via the execution cap, which stops before
// the violation) and resuming with a raised cap must report the IDENTICAL
// violation — same verdict, same lex-least schedule — as the uninterrupted
// search.
func TestCLIModelcheckResumeCounterexample(t *testing.T) {
	args := []string{"-proto", "figure3", "-f", "1", "-t", "1", "-n", "3"}
	ref, code := runCLI(t, "modelcheck", args...)
	if code != 1 {
		t.Fatalf("reference search: exit %d, want 1:\n%s", code, ref)
	}
	wantSchedule := regexp.MustCompile(`schedule: \[[0-9 ]+\]`).FindString(ref)
	if wantSchedule == "" {
		t.Fatalf("reference output has no schedule line:\n%s", ref)
	}

	dir := filepath.Join(t.TempDir(), "run")
	out, code := runCLI(t, "modelcheck",
		append(append([]string{}, args...), "-max", "2", "-checkpoint", dir)...)
	if code != 0 || !strings.Contains(out, "NO VIOLATION FOUND (cap reached") {
		t.Fatalf("capped run: exit %d:\n%s", code, out)
	}

	out, code = runCLI(t, "modelcheck", "-resume", dir, "-max", "200000")
	if code != 1 {
		t.Fatalf("resume: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION (consistency)") {
		t.Errorf("resumed search missing the violation:\n%s", out)
	}
	if !strings.Contains(out, wantSchedule) {
		t.Errorf("resumed counterexample differs from the uninterrupted one:\nwant %s\ngot:\n%s",
			wantSchedule, out)
	}
}

// TestCLIModelcheckResumeMismatch: a run directory resumes only with the
// settings it was created with; contradicting flags must be refused.
func TestCLIModelcheckResumeMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-checkpoint", dir)
	if code != 0 {
		t.Fatalf("checkpoint run: exit %d:\n%s", code, out)
	}
	out, code = runCLI(t, "modelcheck", "-resume", dir, "-n", "3")
	if code != 2 || !strings.Contains(out, "contradicts") {
		t.Errorf("mismatched resume: exit %d, want 2 with a contradiction message:\n%s", code, out)
	}
}

// TestCLIModelcheckDedupReduction: -dedup must complete the same
// verification in measurably fewer executions and report its cache stats.
func TestCLIModelcheckDedupReduction(t *testing.T) {
	args := []string{"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded"}
	plain, code := runCLI(t, "modelcheck", args...)
	if code != 0 || !strings.Contains(plain, "VERIFIED") {
		t.Fatalf("plain run: exit %d:\n%s", code, plain)
	}
	dedup, code := runCLI(t, "modelcheck", append(append([]string{}, args...), "-dedup")...)
	if code != 0 || !strings.Contains(dedup, "VERIFIED") {
		t.Fatalf("dedup run: exit %d:\n%s", code, dedup)
	}
	if !strings.Contains(dedup, "dedup       :") {
		t.Errorf("dedup stats line missing:\n%s", dedup)
	}
	p, d := cliExecutions(t, plain), cliExecutions(t, dedup)
	if d >= p {
		t.Errorf("dedup explored %d executions, plain %d — no reduction", d, p)
	}
}

func TestCLIHierarchy(t *testing.T) {
	out, code := runCLI(t, "hierarchy", "-maxf", "2", "-stress", "100", "-budget", "6000")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "all levels match the paper") {
		t.Errorf("hierarchy mismatch:\n%s", out)
	}
}

func TestCLIExperimentsList(t *testing.T) {
	out, code := runCLI(t, "experiments", "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestCLIExperimentsSingleQuick(t *testing.T) {
	out, code := runCLI(t, "experiments", "-run", "E5", "-quick")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "reproduced:") {
		t.Errorf("missing reproduction line:\n%s", out)
	}
}

func TestCLIExperimentsUnknownID(t *testing.T) {
	if _, code := runCLI(t, "experiments", "-run", "E99"); code != 2 {
		t.Errorf("unknown id: exit %d, want 2", code)
	}
}

func TestCLIValency(t *testing.T) {
	out, code := runCLI(t, "valency", "-proto", "figure1", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "multivalent") || !strings.Contains(out, "critical") {
		t.Errorf("valency output incomplete:\n%s", out)
	}
}

func TestCLIValencyPrefix(t *testing.T) {
	out, code := runCLI(t, "valency", "-proto", "figure1", "-n", "2", "-prefix", "0")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "10-valent") {
		t.Errorf("prefix state must be 10-valent:\n%s", out)
	}
}

// Every runnable example must build and complete successfully; each prints
// a success marker on its happy path.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example integration runs")
	}
	cases := map[string]string{
		"quickstart":    "agreement reached",
		"replicatedlog": "state machines identical",
		"energysim":     "across the whole voltage curve",
		"impossibility": "critical state found",
		"kvstore":       "replay determinism verified",
		"faultsweep":    "BROKEN",
	}
	for name, marker := range cases {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}

// TestCLIModelcheckTraceAndExplain: -trace captures the violating execution
// as trace/v1 JSONL plus a Perfetto timeline, and -explain replays the
// capture, verifies it event for event, and narrates the fault.
func TestCLIModelcheckTraceAndExplain(t *testing.T) {
	traceDir := filepath.Join(t.TempDir(), "traces")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "3",
		"-trace", traceDir, "-trace-sample", "50")
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "trace       : 1 violation(s)") {
		t.Errorf("missing trace summary line:\n%s", out)
	}
	capture := filepath.Join(traceDir, "violation-000001.jsonl")
	if _, err := os.Stat(capture); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(traceDir, "violation-000001.perfetto.json")); err != nil {
		t.Fatal(err)
	}

	exp, code := runCLI(t, "modelcheck", "-explain", capture)
	if code != 0 {
		t.Fatalf("explain: exit %d:\n%s", code, exp)
	}
	for _, want := range []string{"verified", "consistency", "mis-fired", "tolerance bound"} {
		if !strings.Contains(exp, want) {
			t.Errorf("explanation lacks %q:\n%s", want, exp)
		}
	}
}

func TestCLIModelcheckExplainGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("this is not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runCLI(t, "modelcheck", "-explain", bad); code != 2 {
		t.Errorf("garbage trace: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "modelcheck", "-explain", filepath.Join(t.TempDir(), "missing.jsonl")); code != 2 {
		t.Errorf("missing trace: exit %d, want 2", code)
	}
}

// TestCLIModelcheckInterruptFlushesCleanly: on SIGINT, modelcheck shuts the
// engine down gracefully and seals the event log and trace files — no
// truncated final record anywhere, exit code 0.
func TestCLIModelcheckInterruptFlushesCleanly(t *testing.T) {
	dir := t.TempDir()
	traceDir := filepath.Join(dir, "traces")
	eventsFile := filepath.Join(dir, "events.jsonl")
	bin := filepath.Join(buildCLIs(t), "modelcheck")
	cmd := exec.Command(bin,
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded",
		"-workers", "1", "-events", eventsFile,
		"-trace", traceDir, "-trace-sample", "200")
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	signaled := cmd.Process.Signal(os.Interrupt) == nil
	err := cmd.Wait()
	out := buf.String()
	if err != nil {
		t.Fatalf("interrupted run must exit 0: %v\n%s", err, out)
	}
	if signaled && !strings.Contains(out, "VERIFIED") &&
		!strings.Contains(out, "interrupted : signal received") {
		t.Errorf("no interrupt acknowledgement:\n%s", out)
	}

	// Every event-log line must be a complete JSON record.
	data, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("event log is empty")
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("event log line %d is not complete JSON: %q", i+1, line)
		}
	}

	// Every trace artifact must be sealed: trace/v1 files carry their end
	// record (export.ReadFile fails with ErrTruncated otherwise) and the
	// Perfetto files are valid JSON.
	traces, err := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, f := range traces {
		if _, err := export.ReadFile(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if strings.Contains(f, "spans-") {
			spans++
		}
	}
	if spans != 1 {
		t.Errorf("want exactly one sealed spans file, got %d in %v", spans, traces)
	}
	perfettos, err := filepath.Glob(filepath.Join(traceDir, "*.perfetto.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range perfettos {
		data, err := os.ReadFile(f)
		if err != nil || !json.Valid(data) {
			t.Errorf("%s is not valid JSON (err %v)", f, err)
		}
	}
}

// TestCLIModelcheckProfileCapture: -profile-dir writes pprof CPU and heap
// profiles alongside the verdict.
func TestCLIModelcheckProfileCapture(t *testing.T) {
	profDir := filepath.Join(t.TempDir(), "prof")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2",
		"-profile-dir", profDir)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "profiles    : cpu.pprof and heap.pprof written") {
		t.Errorf("missing profiles line:\n%s", out)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(profDir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestCLIExperimentsTrace: the experiments driver forwards -trace to every
// exploration of the sweep; the shared directory accumulates sealed files.
func TestCLIExperimentsTrace(t *testing.T) {
	traceDir := filepath.Join(t.TempDir(), "traces")
	out, code := runCLI(t, "experiments", "-run", "E5", "-quick", "-trace", traceDir)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	traces, err := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("experiments -trace wrote no trace files")
	}
	for _, f := range traces {
		if _, err := export.ReadFile(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
