// Fleet-observability CLI tests: a multi-process ledger run watched through
// `modelcheck -fleet-status` — a SIGSTOPped worker must show up stale within
// one lease TTL, its reaped claim must be traceable across the survivors'
// event logs at the bumped epoch, and the fleet view's totals must agree
// with the finalize merge.
package repro_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

type cliEvent struct {
	Level  string         `json:"level"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields"`
}

func readEvents(t *testing.T, path string) []cliEvent {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []cliEvent
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		var e cliEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestCLIFleetStatusStaleWorkerAndCorrelatedReclaim: a three-worker fleet in
// which the ledger's creator is SIGSTOPped mid-claim. Within one TTL of the
// freeze, -fleet-status must report it STALE with a worker-stale anomaly;
// the survivors must reap its claim and re-enqueue the subtree at epoch+1 —
// visible as a ledger.reclaim naming the victim followed by a claim.acquire
// of the same subtree id at the bumped epoch in the survivors' event logs —
// and the drained fleet's merged count must equal the finalize merge's.
func TestCLIFleetStatusStaleWorkerAndCorrelatedReclaim(t *testing.T) {
	args := []string{"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2", "-unbounded"}
	ref, code := runCLI(t, "modelcheck", args...)
	if code != 0 || !strings.Contains(ref, "VERIFIED") {
		t.Fatalf("reference run: exit %d:\n%s", code, ref)
	}
	refExecs := cliExecutions(t, ref)

	dir := filepath.Join(t.TempDir(), "run")
	evDir := t.TempDir()
	const ttl = 500 * time.Millisecond
	// The victim creates the ledger on the slow interpreted engine (sealed
	// into the manifest for every joiner), so the freeze lands while its
	// root claim is live and mostly unexplored.
	victim := startWorker(t, append(append([]string{}, args...),
		"-engine", "interpreted", "-ledger", dir, "-worker-id", "victim",
		"-lease-ttl", "500ms")...)
	time.Sleep(200 * time.Millisecond)
	if err := victim.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP: %v", err)
	}
	// One TTL (plus scheduling slack) after the freeze the victim's last
	// published heartbeat is stale.
	time.Sleep(ttl + 200*time.Millisecond)

	out, code := runCLI(t, "modelcheck", "-fleet-status", dir)
	if code != 0 {
		t.Fatalf("fleet-status: exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "victim") || !strings.Contains(out, "STALE") {
		t.Errorf("stopped worker not reported stale:\n%s", out)
	}
	if !strings.Contains(out, "[worker-stale]") {
		t.Errorf("worker-stale anomaly missing:\n%s", out)
	}

	evA := filepath.Join(evDir, "a.jsonl")
	evB := filepath.Join(evDir, "b.jsonl")
	a := startWorker(t, "-ledger", dir, "-worker-id", "survivor-a", "-events", evA)
	b := startWorker(t, "-ledger", dir, "-worker-id", "survivor-b", "-events", evB)
	waitWorker(t, "survivor-a", a)
	waitWorker(t, "survivor-b", b)

	// The sweep is drained: the fleet view's merged ledger count must equal
	// what the finalize merge reports, and the machine-readable view must
	// list all three workers.
	out, code = runCLI(t, "modelcheck", "-fleet-status", dir, "-json")
	if code != 0 {
		t.Fatalf("fleet-status -json: exit %d:\n%s", code, out)
	}
	var view struct {
		Schema  string `json:"schema"`
		Workers []struct {
			Worker string `json:"worker"`
			Stale  bool   `json:"stale"`
		} `json:"workers"`
		Ledger struct {
			MergedExecutions int64 `json:"merged_executions"`
			Drained          bool  `json:"drained"`
		} `json:"ledger"`
	}
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatalf("fleet-status -json is not a view: %v\n%s", err, out)
	}
	if view.Schema != "modelcheck-fleet-report/v1" || len(view.Workers) != 3 {
		t.Errorf("view schema %q with %d workers, want 3", view.Schema, len(view.Workers))
	}
	stale := map[string]bool{}
	for _, w := range view.Workers {
		stale[w.Worker] = w.Stale
	}
	if !stale["victim"] || stale["survivor-a"] || stale["survivor-b"] {
		t.Errorf("staleness = %v, want only the victim stale", stale)
	}
	if !view.Ledger.Drained || view.Ledger.MergedExecutions != int64(refExecs) {
		t.Errorf("view ledger = %+v, want drained with %d merged executions", view.Ledger, refExecs)
	}

	syscall.Kill(victim.Process.Pid, syscall.SIGKILL) //nolint:errcheck // frozen on purpose
	victim.Wait()                                     //nolint:errcheck // killed on purpose

	// Correlated lifecycle across processes: some survivor reaped the
	// victim's claim (ledger.reclaim names the dead owner, id, epoch) and
	// some survivor re-acquired the same subtree at epoch+1.
	events := append(readEvents(t, evA), readEvents(t, evB)...)
	type reap struct {
		id    string
		epoch float64
	}
	var reaps []reap
	for _, e := range events {
		if e.Type == "ledger.reclaim" && e.Fields["dead_owner"] == "victim" {
			reaps = append(reaps, reap{e.Fields["id"].(string), e.Fields["epoch"].(float64)})
		}
	}
	if len(reaps) == 0 {
		t.Fatal("no survivor reaped the victim's claim (ledger.reclaim with dead_owner=victim)")
	}
	for _, r := range reaps {
		found := false
		for _, e := range events {
			if e.Type == "claim.acquire" && e.Fields["claim"] == r.id &&
				e.Fields["epoch"].(float64) == r.epoch+1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("reaped claim %s@e%v never re-acquired at epoch %v by a survivor",
				r.id, r.epoch, r.epoch+1)
		}
	}

	// The finalize merge agrees with the fleet view and embeds the fleet
	// section into its machine-readable report.
	report := filepath.Join(evDir, "report.json")
	out, code = runCLI(t, "modelcheck", "-ledger-finalize", dir, "-report", report)
	if code != 0 || !strings.Contains(out, "VERIFIED") {
		t.Fatalf("finalize: exit %d:\n%s", code, out)
	}
	if got := cliExecutions(t, out); got != refExecs {
		t.Errorf("finalize executions = %d, fleet view and reference say %d", got, refExecs)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "modelcheck-fleet-report/v1") {
		t.Errorf("finalize report embeds no fleet section:\n%.400s", rep)
	}
}

// TestCLIFleetStatusRefusesNonLedgerDir: pointing -fleet-status at a
// directory that never hosted a ledger must fail loudly, not render an
// empty fleet.
func TestCLIFleetStatusRefusesNonLedgerDir(t *testing.T) {
	out, code := runCLI(t, "modelcheck", "-fleet-status", t.TempDir())
	if code != 2 || !strings.Contains(out, "ledger") {
		t.Errorf("fleet-status on a bare directory: exit %d, want 2:\n%s", code, out)
	}
}
