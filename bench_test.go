// Benchmarks regenerating the cost side of every reproduction experiment
// (see DESIGN.md §3 and EXPERIMENTS.md). One benchmark family per
// experiment, plus microbenchmarks for the substrates.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/word"
)

func benchInputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

func objectIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// --- E1: two-process consensus from one faulty CAS (Figure 1) ---

func BenchmarkE1TwoProcess(b *testing.B) {
	for _, rate := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("rate=%.1f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				res, err := run.Consensus(run.Config{
					Protocol:  core.SingleCAS{},
					Inputs:    benchInputs(2),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewBudget(1, fault.Unbounded),
					Policy:    fault.WhenEffective(fault.Rate(fault.Overriding, rate, seed)),
				})
				if err != nil || !res.Verdict.OK() {
					b.Fatalf("violation or error: %v %v", err, res.Verdict)
				}
			}
		})
	}
}

// --- E2: f-tolerant consensus from f+1 objects (Figure 2) ---

func BenchmarkE2FPlusOne(b *testing.B) {
	for _, f := range []int{1, 2, 4, 8} {
		for _, n := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("f=%d/n=%d", f, n), func(b *testing.B) {
				proto := core.NewFPlusOne(f)
				for i := 0; i < b.N; i++ {
					seed := int64(i)
					res, err := run.Consensus(run.Config{
						Protocol:  proto,
						Inputs:    benchInputs(n),
						Scheduler: sim.NewRandom(seed),
						Budget:    fault.NewFixedBudget(objectIDs(f), fault.Unbounded),
						Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
					})
					if err != nil || !res.Verdict.OK() {
						b.Fatalf("violation or error: %v %v", err, res.Verdict)
					}
				}
			})
		}
	}
}

// --- E3: (f, t, f+1)-tolerant consensus from f faulty objects (Figure 3) ---

func BenchmarkE3Staged(b *testing.B) {
	for _, cfg := range []struct{ f, t int }{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}} {
		b.Run(fmt.Sprintf("f=%d/t=%d", cfg.f, cfg.t), func(b *testing.B) {
			proto := core.NewStaged(cfg.f, cfg.t)
			n := cfg.f + 1
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				res, err := run.Consensus(run.Config{
					Protocol:  proto,
					Inputs:    benchInputs(n),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewFixedBudget(objectIDs(cfg.f), cfg.t),
					Policy:    fault.WhenEffective(fault.Rate(fault.Overriding, 0.4, seed)),
				})
				if err != nil || !res.Verdict.OK() {
					b.Fatalf("violation or error: %v %v", err, res.Verdict)
				}
			}
		})
	}
}

// --- E4: time to find the Theorem 18 counterexample ---

func BenchmarkE4CounterexampleSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := explore.Check(explore.Config{
			Protocol:        core.SingleCAS{},
			Inputs:          benchInputs(3),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		})
		if err != nil || out.OK() {
			b.Fatal("expected a violation")
		}
	}
}

// --- E5: the covering adversary (Theorem 19) ---

func BenchmarkE5Covering(b *testing.B) {
	for _, f := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			proto := core.NewStaged(f, 1)
			for i := 0; i < b.N; i++ {
				res, err := adversary.Covering(proto, benchInputs(f+2))
				if err != nil || !res.Violated() {
					b.Fatal("covering adversary must violate")
				}
			}
		})
	}
}

// --- E6: exhaustive verification throughput (the hierarchy's base level) ---

func BenchmarkE6ExhaustiveTheorem6(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		out, err := explore.Check(explore.Config{
			Protocol:        core.NewStaged(1, 1),
			Inputs:          benchInputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: 1,
		})
		if err != nil || !out.Complete || !out.OK() {
			b.Fatal("exhaustive verification failed")
		}
		execs = out.Executions
	}
	b.ReportMetric(float64(execs), "executions/verification")
}

// --- E7: the data-fault comparator ---

func BenchmarkE7DataFault(b *testing.B) {
	proto := core.NewStaged(1, 1)
	in := benchInputs(2)
	forged := word.Pack(in[1], proto.MaxStage())
	for i := 0; i < b.N; i++ {
		res, err := adversary.DataFault(proto, in, 0, forged)
		if err != nil || !res.Violated() {
			b.Fatal("data fault must violate")
		}
	}
}

// --- E8: construction cost on real atomics ---

func benchAtomicConsensus(b *testing.B, proto core.Protocol, procs, faulty, t int, rate float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var bank *atomicx.Bank
		if faulty > 0 {
			bank = atomicx.NewFaultyBank(proto.Objects(),
				fault.NewFixedBudget(objectIDs(faulty), t), rate, int64(i))
		} else {
			bank = atomicx.NewBank(proto.Objects())
		}
		var wg sync.WaitGroup
		results := make([]int64, procs)
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = proto.Decide(bank, int64(100+g))
			}(g)
		}
		wg.Wait()
		for g := 1; g < procs; g++ {
			if results[g] != results[0] {
				b.Fatalf("disagreement: %v", results)
			}
		}
	}
}

func BenchmarkE8Baseline(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchAtomicConsensus(b, core.SingleCAS{}, procs, 0, 0, 0)
		})
	}
}

func BenchmarkE8FPlusOne(b *testing.B) {
	for _, f := range []int{1, 3} {
		for _, procs := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("f=%d/procs=%d", f, procs), func(b *testing.B) {
				benchAtomicConsensus(b, core.NewFPlusOne(f), procs, f, fault.Unbounded, 0.3)
			})
		}
	}
}

func BenchmarkE8Staged(b *testing.B) {
	// Figure 3 is tolerant only up to f+1 processes, so concurrency is
	// tied to f (procs = f+1).
	for _, cfg := range []struct{ f, t int }{{1, 1}, {3, 1}, {3, 2}, {7, 1}} {
		b.Run(fmt.Sprintf("f=%d/t=%d/procs=%d", cfg.f, cfg.t, cfg.f+1), func(b *testing.B) {
			benchAtomicConsensus(b, core.NewStaged(cfg.f, cfg.t), cfg.f+1, cfg.f, cfg.t, 0.3)
		})
	}
}

func BenchmarkE8ReplicatedLogAppend(b *testing.B) {
	proto := core.NewFPlusOne(1)
	log := core.NewLog(proto, func() core.Env {
		return atomicx.NewBank(proto.Objects())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Append(core.EncodeCmd(0, int64(i%core.MaxCmdPayload)))
	}
}

// --- microbenchmarks for the substrates ---

func BenchmarkMicroWordPack(b *testing.B) {
	var sink word.Word
	for i := 0; i < b.N; i++ {
		sink = word.Pack(int64(i&word.MaxValue), int64(i&15))
	}
	_ = sink
}

func BenchmarkMicroSimCASStep(b *testing.B) {
	// Cost of one scheduled CAS step in the simulator, amortized over a
	// long-running single process.
	const stepsPerRun = 1024
	bank := object.NewBank(1, nil, nil)
	prog := func(p *sim.Proc) word.Word {
		env := bank.Bind(p)
		for i := 0; i < stepsPerRun; i++ {
			env.CAS(0, word.Bottom, word.Bottom)
		}
		return word.FromValue(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Programs:  []sim.Program{prog},
			Scheduler: sim.NewRoundRobin(),
			StepLimit: stepsPerRun + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*stepsPerRun)/b.Elapsed().Seconds(), "steps/s")
}

func BenchmarkMicroAtomicCAS(b *testing.B) {
	bank := atomicx.NewBank(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bank.CAS(0, word.Bottom, word.Bottom)
		}
	})
}

func BenchmarkMicroFaultyAtomicCAS(b *testing.B) {
	bank := atomicx.NewFaultyBank(1, fault.NewBudget(1, fault.Unbounded), 0.5, 1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bank.CAS(0, word.Bottom, word.Bottom)
		}
	})
}

func BenchmarkMicroCASApply(b *testing.B) {
	o := object.NewCAS(0, fault.NewBudget(1, fault.Unbounded), fault.Always(fault.Overriding))
	for i := 0; i < b.N; i++ {
		o.Apply(0, word.Bottom, word.FromValue(int64(i&word.MaxValue)))
	}
}
